package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"permcell"
	"permcell/internal/metrics"
)

// newTestService starts a Server plus an httptest front end and tears both
// down with the test.
func newTestService(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	})
	return s, hs
}

// serialSpec is the cheap reference workload: ~400 particles, serial engine.
func serialSpec(steps int) RunSpec {
	return RunSpec{Kind: KindSerial, NC: 4, Rho: 0.4, Steps: steps}
}

func postRun(t *testing.T, hs *httptest.Server, spec RunSpec) string {
	t.Helper()
	id, code, body := tryPostRun(t, hs, spec)
	if code != http.StatusCreated {
		t.Fatalf("POST /runs: status %d, body %s", code, body)
	}
	return id
}

func tryPostRun(t *testing.T, hs *httptest.Server, spec RunSpec) (id string, code int, body string) {
	t.Helper()
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatalf("marshal spec: %v", err)
	}
	resp, err := http.Post(hs.URL+"/runs", "application/json", strings.NewReader(string(b)))
	if err != nil {
		t.Fatalf("POST /runs: %v", err)
	}
	defer resp.Body.Close()
	var buf strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		buf.WriteString(sc.Text())
	}
	if resp.StatusCode != http.StatusCreated {
		return "", resp.StatusCode, buf.String()
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &out); err != nil {
		t.Fatalf("decode POST /runs response %q: %v", buf.String(), err)
	}
	return out.ID, resp.StatusCode, buf.String()
}

func getStatus(t *testing.T, hs *httptest.Server, id string) RunStatus {
	t.Helper()
	resp, err := http.Get(hs.URL + "/runs/" + id)
	if err != nil {
		t.Fatalf("GET /runs/%s: %v", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /runs/%s: status %d", id, resp.StatusCode)
	}
	var st RunStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode status: %v", err)
	}
	return st
}

// streamRecords tails /runs/{id}/stream until it closes (terminal state)
// and returns every record.
func streamRecords(t *testing.T, hs *httptest.Server, id string) []metrics.StepRecord {
	t.Helper()
	resp, err := http.Get(hs.URL + "/runs/" + id + "/stream")
	if err != nil {
		t.Fatalf("GET stream: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET stream: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream Content-Type = %q", ct)
	}
	var recs []metrics.StepRecord
	dec := json.NewDecoder(resp.Body)
	for {
		var rec metrics.StepRecord
		if err := dec.Decode(&rec); err != nil {
			break // EOF at terminal state
		}
		recs = append(recs, rec)
	}
	return recs
}

func waitState(t *testing.T, s *Server, id string, want State) {
	t.Helper()
	r, err := s.Get(id)
	if err != nil {
		t.Fatalf("Get(%s): %v", id, err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		_, st, ch := r.view()
		if st == want {
			return
		}
		if st.Terminal() || time.Now().After(deadline) {
			t.Fatalf("run %s: state %s, want %s", id, st, want)
		}
		select {
		case <-ch:
		case <-time.After(100 * time.Millisecond):
		}
	}
}

func waitTerminal(t *testing.T, s *Server, id string) State {
	t.Helper()
	r, err := s.Get(id)
	if err != nil {
		t.Fatalf("Get(%s): %v", id, err)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		_, st, ch := r.view()
		if st.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("run %s: still %s after deadline", id, st)
		}
		select {
		case <-ch:
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// soloTrace runs spec directly against the facade — no service — and
// returns the records a served run of the same spec must reproduce
// bit-for-bit (on the deterministic fields; see traceKey).
func soloTrace(t *testing.T, spec RunSpec, dir string) []metrics.StepRecord {
	t.Helper()
	var recs []metrics.StepRecord
	onStep := func(st permcell.StepStats) { recs = append(recs, stepRecord(&spec, st)) }
	var sab *permcell.Sabotage
	if sb := spec.Sabotage; sb != nil {
		sab = &permcell.Sabotage{Kind: sb.Kind, Step: sb.Step, Rank: sb.Rank}
	}
	opts, err := spec.options(dir, sab, onStep, nil)
	if err != nil {
		t.Fatalf("options: %v", err)
	}
	eng, err := spec.build(opts)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if err := eng.Step(spec.Steps); err != nil {
		t.Fatalf("solo Step: %v", err)
	}
	if _, err := eng.Result(); err != nil {
		t.Fatalf("solo Result: %v", err)
	}
	return recs
}

// traceKey collapses a record's deterministic fields — physics, work
// metrics, balancer activity — into a comparable string. Wall-clock fields
// are deliberately excluded: they are the only nondeterministic part of a
// trace.
func traceKey(r metrics.StepRecord) string {
	return fmt.Sprintf("%d|%x|%x|%x|%s|%d|%d|%x|%x|%x|%x",
		r.Step,
		math.Float64bits(r.WorkMax), math.Float64bits(r.WorkAve), math.Float64bits(r.WorkMin),
		r.Balancer, r.Moved, r.MovedBytes,
		math.Float64bits(r.C0OverC), math.Float64bits(r.NFactor),
		math.Float64bits(r.TotalEnergy), math.Float64bits(r.Temperature))
}

func assertSameTrace(t *testing.T, got, want []metrics.StepRecord, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d records, want %d", label, len(got), len(want))
	}
	for i := range got {
		if g, w := traceKey(got[i]), traceKey(want[i]); g != w {
			t.Fatalf("%s: record %d diverges:\n got %s\nwant %s", label, i, g, w)
		}
	}
}

func TestServeRunToCompletion(t *testing.T) {
	s, hs := newTestService(t, Config{Workers: 2})
	spec := serialSpec(20)
	id := postRun(t, hs, spec)

	recs := streamRecords(t, hs, id)
	if st := waitTerminal(t, s, id); st != StateCompleted {
		t.Fatalf("state = %s, want completed", st)
	}
	if len(recs) != spec.Steps {
		t.Fatalf("streamed %d records, want %d", len(recs), spec.Steps)
	}
	st := getStatus(t, hs, id)
	if st.Done != spec.Steps || st.Records != spec.Steps {
		t.Fatalf("status = %+v", st)
	}

	solo := soloTrace(t, spec, t.TempDir())
	assertSameTrace(t, recs, solo, "served vs solo")
}

func TestServeParallelMatchesSolo(t *testing.T) {
	s, hs := newTestService(t, Config{Workers: 2})
	spec := RunSpec{Kind: KindParallel, M: 2, P: 4, Rho: 0.4, Steps: 12, Balancer: "permcell"}
	id := postRun(t, hs, spec)
	recs := streamRecords(t, hs, id)
	if st := waitTerminal(t, s, id); st != StateCompleted {
		t.Fatalf("state = %s, want completed", st)
	}
	solo := soloTrace(t, spec, t.TempDir())
	assertSameTrace(t, recs, solo, "parallel served vs solo")
}

func TestPauseResumeBitIdentical(t *testing.T) {
	s, hs := newTestService(t, Config{Workers: 1, StepBatch: 1})
	spec := serialSpec(300)
	id := postRun(t, hs, spec)

	// Pause as soon as the run is actually running. With StepBatch=1 the
	// worker honors the request at the next step boundary.
	waitState(t, s, id, StateRunning)
	if err := s.Pause(id); err != nil {
		t.Fatalf("Pause: %v", err)
	}
	waitState(t, s, id, StatePaused)

	st := getStatus(t, hs, id)
	if st.Done >= spec.Steps {
		t.Fatalf("paused after all %d steps; pause raced completion", spec.Steps)
	}
	paused := st.Done

	if err := s.Resume(id); err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if fin := waitTerminal(t, s, id); fin != StateCompleted {
		t.Fatalf("state after resume = %s, want completed", fin)
	}

	// A stream opened after the fact replays the full history: the resumed
	// half must continue the trajectory bit-for-bit.
	recs := streamRecords(t, hs, id)
	solo := soloTrace(t, spec, t.TempDir())
	assertSameTrace(t, recs, solo, fmt.Sprintf("pause@%d/resume vs solo", paused))
}

func TestCancel(t *testing.T) {
	s, hs := newTestService(t, Config{Workers: 1, StepBatch: 1})
	spec := serialSpec(100_000)
	id := postRun(t, hs, spec)
	waitState(t, s, id, StateRunning)

	req, _ := http.NewRequest(http.MethodDelete, hs.URL+"/runs/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE: status %d", resp.StatusCode)
	}
	if st := waitTerminal(t, s, id); st != StateCanceled {
		t.Fatalf("state = %s, want canceled", st)
	}
}

func TestAdmissionControl(t *testing.T) {
	s, hs := newTestService(t, Config{Workers: 1, QueueDepth: 1, MaxParticles: 500, StepBatch: 1})

	// Invalid spec: 400.
	if _, code, _ := tryPostRun(t, hs, RunSpec{Kind: KindParallel, M: 0, P: 3, Rho: 0.4, Steps: 1}); code != http.StatusBadRequest {
		t.Fatalf("invalid spec: status %d, want 400", code)
	}
	// Over the particle cap: 413.
	if _, code, _ := tryPostRun(t, hs, RunSpec{Kind: KindSerial, NC: 8, Rho: 0.4, Steps: 1}); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized spec: status %d, want 413", code)
	}

	// Fill the single worker, then the single queue slot; the next submit
	// must be rejected with 429.
	a := postRun(t, hs, serialSpec(100_000))
	waitState(t, s, a, StateRunning) // a is out of the queue
	b := postRun(t, hs, serialSpec(10))
	if _, code, _ := tryPostRun(t, hs, serialSpec(10)); code != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: status %d, want 429", code)
	}
	if err := s.Cancel(a); err != nil {
		t.Fatalf("Cancel(a): %v", err)
	}
	waitTerminal(t, s, a)
	if st := waitTerminal(t, s, b); st != StateCompleted {
		t.Fatalf("queued run after cancel: %s, want completed", st)
	}
}

func TestLifecycleConflicts(t *testing.T) {
	s, hs := newTestService(t, Config{Workers: 1})
	id := postRun(t, hs, serialSpec(5))
	waitTerminal(t, s, id)

	var cf *ConflictError
	if err := s.Pause(id); !errors.As(err, &cf) {
		t.Fatalf("Pause(completed) = %v, want ConflictError", err)
	}
	if err := s.Resume(id); !errors.As(err, &cf) {
		t.Fatalf("Resume(completed) = %v, want ConflictError", err)
	}
	var nf *NotFoundError
	if err := s.Pause("nope"); !errors.As(err, &nf) {
		t.Fatalf("Pause(unknown) = %v, want NotFoundError", err)
	}
	resp, err := http.Get(hs.URL + "/runs/nope")
	if err != nil {
		t.Fatalf("GET unknown: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET unknown run: status %d, want 404", resp.StatusCode)
	}
}

func TestSupervisedSabotageHealsNeighborsUntouched(t *testing.T) {
	s, hs := newTestService(t, Config{Workers: 2})
	retries := 2
	sabotaged := RunSpec{
		Kind: KindParallel, M: 2, P: 4, Rho: 0.4, Steps: 16,
		Balancer:   "permcell",
		MaxRetries: &retries,
		Sabotage:   &SabotageSpec{Kind: permcell.SabotagePanic, Step: 6, Rank: 1},
	}
	healthy := serialSpec(16)

	sid := postRun(t, hs, sabotaged)
	hid := postRun(t, hs, healthy)

	if st := waitTerminal(t, s, sid); st != StateCompleted {
		t.Fatalf("sabotaged supervised run = %s, want completed (healed)", st)
	}
	if st := waitTerminal(t, s, hid); st != StateCompleted {
		t.Fatalf("healthy neighbor = %s, want completed", st)
	}

	// The healed run's physics must match the unsabotaged solo trajectory.
	clean := sabotaged
	clean.Sabotage = nil
	clean.MaxRetries = nil
	solo := soloTrace(t, clean, t.TempDir())
	recs := streamRecords(t, hs, sid)
	// The supervisor replays the rolled-back steps; the stream deduplicates
	// nothing, so compare against the solo trace by step number using the
	// last record per step (the healed replay).
	latest := map[int]metrics.StepRecord{}
	for _, r := range recs {
		latest[r.Step] = r
	}
	if len(latest) != len(solo) {
		t.Fatalf("healed run covers %d distinct steps, want %d", len(latest), len(solo))
	}
	for _, want := range solo {
		got, ok := latest[want.Step]
		if !ok {
			t.Fatalf("healed run missing step %d", want.Step)
		}
		if traceKey(got) != traceKey(want) {
			t.Fatalf("healed step %d diverges:\n got %s\nwant %s", want.Step, traceKey(got), traceKey(want))
		}
	}

	// And the healthy neighbor is bit-identical to its own solo run.
	assertSameTrace(t, streamRecords(t, hs, hid), soloTrace(t, healthy, t.TempDir()), "neighbor vs solo")
}

func TestUnsupervisedSabotageFailsOnlyItself(t *testing.T) {
	s, hs := newTestService(t, Config{Workers: 2})
	doomed := RunSpec{
		Kind: KindParallel, M: 2, P: 4, Rho: 0.4, Steps: 16,
		Sabotage: &SabotageSpec{Kind: permcell.SabotagePanic, Step: 4, Rank: 0},
	}
	healthy := serialSpec(16)
	did := postRun(t, hs, doomed)
	hid := postRun(t, hs, healthy)

	if st := waitTerminal(t, s, did); st != StateFailed {
		t.Fatalf("unsupervised sabotaged run = %s, want failed", st)
	}
	if getStatus(t, hs, did).Error == "" {
		t.Fatal("failed run reports no error")
	}
	if st := waitTerminal(t, s, hid); st != StateCompleted {
		t.Fatalf("healthy neighbor = %s, want completed", st)
	}
	assertSameTrace(t, streamRecords(t, hs, hid), soloTrace(t, healthy, t.TempDir()), "neighbor vs solo")
}

var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$`)

func TestMetricsEndpoint(t *testing.T) {
	s, hs := newTestService(t, Config{Workers: 1})
	id := postRun(t, hs, serialSpec(8))
	waitTerminal(t, s, id)
	streamRecords(t, hs, id) // drain

	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}

	seenHelp := map[string]int{}
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		lines = append(lines, line)
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			seenHelp[strings.Fields(rest)[0]]++
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") || line == "" {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("malformed exposition line: %q", line)
		}
	}
	body := strings.Join(lines, "\n")

	for family, n := range seenHelp {
		if n != 1 {
			t.Errorf("family %s declared %d times, want exactly 1", family, n)
		}
	}
	for _, want := range []string{
		`permcell_serve_runs{state="completed"} 1`,
		"permcell_serve_queue_depth 0",
		"permcell_serve_admitted_total 1",
		`permcell_serve_rejected_total{reason="queue_full"} 0`,
		fmt.Sprintf(`permcell_run_steps_done{run="%s"} 8`, id),
		fmt.Sprintf(`permcell_run_load_ratio{run="%s"}`, id),
		fmt.Sprintf(`run="%s"`, id),
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Per-run cumulative families must be present with the run label.
	if !regexp.MustCompile(`permcell_steps_total\{run="` + id + `"\} 8`).MatchString(body) {
		t.Errorf("exposition missing labelled permcell_steps_total for %s:\n%s", id, body)
	}
}

func TestHealthz(t *testing.T) {
	_, hs := newTestService(t, Config{})
	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz: status %d", resp.StatusCode)
	}
}

func TestStreamSSE(t *testing.T) {
	s, hs := newTestService(t, Config{Workers: 1})
	id := postRun(t, hs, serialSpec(5))
	waitTerminal(t, s, id)

	req, _ := http.NewRequest(http.MethodGet, hs.URL+"/runs/"+id+"/stream?sse=1", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET stream sse: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("sse Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	events := 0
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		payload, ok := strings.CutPrefix(line, "data: ")
		if !ok {
			t.Fatalf("sse line without data prefix: %q", line)
		}
		var rec metrics.StepRecord
		if err := json.Unmarshal([]byte(payload), &rec); err != nil {
			t.Fatalf("sse payload: %v", err)
		}
		events++
	}
	if events != 5 {
		t.Fatalf("sse events = %d, want 5", events)
	}
}
