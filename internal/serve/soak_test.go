package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"permcell"
	"permcell/internal/metrics"
)

// soakVariant is one archetype in the soak fleet.
type soakVariant struct {
	name string
	spec RunSpec
	want State
}

// healthyVariants covers every engine kind plus balanced parallel.
func healthyVariants() []soakVariant {
	return []soakVariant{
		{"serial", RunSpec{Kind: KindSerial, NC: 4, Rho: 0.4, Steps: 10}, StateCompleted},
		{"static", RunSpec{Kind: KindStatic, NC: 4, P: 2, Shape: "plane", Rho: 0.4, Steps: 10}, StateCompleted},
		{"parallel-ddm", RunSpec{Kind: KindParallel, M: 2, P: 4, Rho: 0.4, Steps: 10}, StateCompleted},
		{"parallel-dlb", RunSpec{Kind: KindParallel, M: 2, P: 4, Rho: 0.4, Steps: 10, Balancer: "permcell"}, StateCompleted},
	}
}

// runFleet submits total runs cycling through variants, tails every stream
// concurrently, waits for the expected terminal states and returns the
// collected traces (indexed like the submissions).
func runFleet(t *testing.T, s *Server, hs *httptest.Server, variants []soakVariant, total int) ([]string, [][]metrics.StepRecord) {
	t.Helper()
	ids := make([]string, total)
	for i := range ids {
		ids[i] = postRun(t, hs, variants[i%len(variants)].spec)
	}
	traces := make([][]metrics.StepRecord, total)
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func() {
			defer wg.Done()
			traces[i] = streamFleet(hs, id)
		}()
	}
	for i, id := range ids {
		v := variants[i%len(variants)]
		if st := waitTerminal(t, s, id); st != v.want {
			t.Errorf("run %s (%s): state %s, want %s", id, v.name, st, v.want)
		}
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	return ids, traces
}

// shutdownAndSettle closes the front end, shuts the service down and waits
// for the goroutine count to drop to the given ceiling, failing with a full
// stack dump if it never does.
func shutdownAndSettle(t *testing.T, s *Server, hs *httptest.Server, ceiling int) int {
	t.Helper()
	hs.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= ceiling {
			return n
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d live, ceiling %d\n%s", n, ceiling, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestSoakConcurrentRuns pushes >=100 runs through the service at once —
// every engine kind, a sabotaged subset — and holds the service to the
// issue's bar:
//
//   - every healthy run's streamed trace is bit-identical to a solo run of
//     the same spec (deterministic fields; see traceKey),
//   - sabotaged runs heal (supervised) or fail (unsupervised) exactly per
//     their policy, without touching any neighbor,
//   - no goroutine leaks: the mixed fleet winds down to a bounded residue
//     (a dead rank permanently parks its surviving world — the documented
//     MPI_Abort analogue — so each sabotaged parallel run may retain a few
//     blocked goroutines), and a healthy-only fleet winds down to exactly
//     the pre-fleet count.
//
// Run it under -race to make the soak double as a data-race sweep over the
// whole serve/facade/engine stack.
func TestSoakConcurrentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("soak: skipped in -short mode")
	}
	const total = 120
	retries := 2
	variants := append(healthyVariants(),
		soakVariant{"sabotage-healed", RunSpec{
			Kind: KindParallel, M: 2, P: 4, Rho: 0.4, Steps: 10,
			MaxRetries: &retries,
			Sabotage:   &SabotageSpec{Kind: permcell.SabotagePanic, Step: 5, Rank: 1},
		}, StateCompleted},
		// Unsupervised panic: the in-engine trap converts it into a Step
		// error, so the run fails cleanly instead of crashing the worker.
		// (An unsupervised NaN would sail through — the physics guard is
		// armed by the supervisor, which this variant deliberately lacks.)
		soakVariant{"sabotage-doomed", RunSpec{
			Kind: KindParallel, M: 2, P: 4, Rho: 0.4, Steps: 10,
			Sabotage: &SabotageSpec{Kind: permcell.SabotagePanic, Step: 5, Rank: 0},
		}, StateFailed},
	)

	// One solo reference trace per healthy variant (the expensive part is
	// shared across all runs of that variant).
	solo := make([][]metrics.StepRecord, len(variants))
	for i, v := range variants {
		if v.spec.Sabotage == nil {
			solo[i] = soloTrace(t, v.spec, t.TempDir())
		}
	}

	baseline := runtime.NumGoroutine()
	s, hs := newTestService(t, Config{
		Workers:    runtime.GOMAXPROCS(0),
		QueueDepth: total,
		StepBatch:  4,
	})
	ids, traces := runFleet(t, s, hs, variants, total)

	for i, id := range ids {
		vi := i % len(variants)
		v := variants[vi]
		switch {
		case v.spec.Sabotage == nil:
			assertSameTrace(t, traces[i], solo[vi], fmt.Sprintf("run %s (%s)", id, v.name))
		case v.want == StateCompleted:
			// Healed: the supervisor replays rolled-back steps, so compare
			// the last record per step against the clean reference — the
			// parallel-ddm variant has the same physics spec minus the
			// sabotage/supervision policy fields.
			ref := solo[2]
			latest := map[int]metrics.StepRecord{}
			for _, r := range traces[i] {
				latest[r.Step] = r
			}
			if len(latest) != len(ref) {
				t.Errorf("run %s (%s): %d distinct steps, want %d", id, v.name, len(latest), len(ref))
				continue
			}
			for _, want := range ref {
				if traceKey(latest[want.Step]) != traceKey(want) {
					t.Errorf("run %s (%s): healed step %d diverges", id, v.name, want.Step)
					break
				}
			}
		default:
			// Doomed: must have failed with a recorded error.
			if getStatus(t, hs, id).Error == "" {
				t.Errorf("run %s (%s): failed without an error message", id, v.name)
			}
		}
	}

	// Service-level accounting survived the stampede.
	s.mu.Lock()
	admitted := s.admitted
	s.mu.Unlock()
	if admitted != int64(total) {
		t.Errorf("admitted = %d, want %d", admitted, total)
	}

	// Bounded residue: every abandoned world (one per doomed run, one per
	// healed run's rollback) parks at most its P ranks plus their comm and
	// batch helpers. Anything beyond that allowance is a real leak.
	sabotaged := 2 * (total / len(variants))
	settled := shutdownAndSettle(t, s, hs, baseline+12*sabotaged)

	// Strict phase: a healthy-only fleet must wind down to exactly the
	// goroutines alive before it started (small slack for runtime helpers).
	s2, hs2 := newTestService(t, Config{
		Workers:    runtime.GOMAXPROCS(0),
		QueueDepth: total,
		StepBatch:  4,
	})
	hv := healthyVariants()
	ids2, traces2 := runFleet(t, s2, hs2, hv, total)
	for i, id := range ids2 {
		assertSameTrace(t, traces2[i], solo[i%len(hv)], fmt.Sprintf("healthy run %s (%s)", id, hv[i%len(hv)].name))
	}
	shutdownAndSettle(t, s2, hs2, settled+5)
}

// streamFleet is streamRecords without the *testing.T plumbing (the soak
// tails 240 streams from goroutines; a transport error just ends the tail,
// and the per-run trace assertions catch any truncation).
func streamFleet(hs *httptest.Server, id string) []metrics.StepRecord {
	resp, err := hs.Client().Get(hs.URL + "/runs/" + id + "/stream")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	var recs []metrics.StepRecord
	dec := json.NewDecoder(resp.Body)
	for {
		var rec metrics.StepRecord
		if err := dec.Decode(&rec); err != nil {
			return recs
		}
		recs = append(recs, rec)
	}
}
