package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"

	"permcell/internal/metrics"
)

// Handler returns the service's HTTP API:
//
//	POST   /runs             submit a RunSpec; 201 + {"id": ...}
//	GET    /runs             list run statuses
//	GET    /runs/{id}        one run's status
//	GET    /runs/{id}/stream live step records, JSONL by default,
//	                         text/event-stream with Accept: text/event-stream
//	                         or ?sse=1; ?from=N skips the first N records
//	POST   /runs/{id}/pause  checkpoint and park at the next batch boundary
//	POST   /runs/{id}/resume restore from checkpoint and re-queue
//	DELETE /runs/{id}        cancel
//	GET    /metrics          Prometheus exposition, service + per-run series
//	GET    /healthz          liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /runs", s.handleSubmit)
	mux.HandleFunc("GET /runs", s.handleList)
	mux.HandleFunc("GET /runs/{id}", s.handleStatus)
	mux.HandleFunc("GET /runs/{id}/stream", s.handleStream)
	mux.HandleFunc("POST /runs/{id}/pause", s.handlePause)
	mux.HandleFunc("POST /runs/{id}/resume", s.handleResume)
	mux.HandleFunc("DELETE /runs/{id}", s.handleCancel)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// httpError maps service errors onto status codes and writes a JSON error
// body.
func httpError(w http.ResponseWriter, err error) {
	code := http.StatusBadRequest
	var nf *NotFoundError
	var cf *ConflictError
	switch {
	case errors.As(err, &nf):
		code = http.StatusNotFound
	case errors.As(err, &cf):
		code = http.StatusConflict
	case errors.Is(err, ErrQueueFull):
		code = http.StatusTooManyRequests
	case errors.Is(err, ErrTooLarge):
		code = http.StatusRequestEntityTooLarge
	case errors.Is(err, ErrClosed):
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec RunSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, fmt.Errorf("serve: decoding run spec: %w", err))
		return
	}
	id, err := s.Submit(spec)
	if err != nil {
		httpError(w, err)
		return
	}
	w.Header().Set("Location", "/runs/"+id)
	writeJSON(w, http.StatusCreated, map[string]string{"id": id})
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.List())
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	run, err := s.Get(r.PathValue("id"))
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, run.snapshot())
}

func (s *Server) handlePause(w http.ResponseWriter, r *http.Request) {
	if err := s.Pause(r.PathValue("id")); err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"state": string(StatePaused)})
}

func (s *Server) handleResume(w http.ResponseWriter, r *http.Request) {
	if err := s.Resume(r.PathValue("id")); err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"state": string(StateQueued)})
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	if err := s.Cancel(r.PathValue("id")); err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"state": string(StateCanceled)})
}

// handleStream tails a run's step records. Records already collected are
// replayed first; the stream then follows the run live — across pauses —
// and ends when the run reaches a terminal state (or the client goes
// away). Lossless by construction: the log is replayed from an offset, so
// a slow consumer delays only itself, never the run (the OnStep hook
// appends under the run mutex and returns).
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	run, err := s.Get(r.PathValue("id"))
	if err != nil {
		httpError(w, err)
		return
	}
	from := 0
	if v := r.URL.Query().Get("from"); v != "" {
		if _, err := fmt.Sscanf(v, "%d", &from); err != nil || from < 0 {
			httpError(w, fmt.Errorf("serve: bad from=%q", v))
			return
		}
	}
	sse := r.URL.Query().Get("sse") == "1" || r.Header.Get("Accept") == "text/event-stream"
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)

	enc := json.NewEncoder(w)
	emit := func(rec metrics.StepRecord) error {
		if sse {
			if _, err := fmt.Fprint(w, "data: "); err != nil {
				return err
			}
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
		if sse {
			if _, err := fmt.Fprint(w, "\n"); err != nil {
				return err
			}
		}
		return nil
	}

	for {
		n, state, ch := run.view()
		for from < n {
			// Copy out in bounded chunks so a huge backlog is not held
			// under the run mutex at once.
			to := min(n, from+256)
			for _, rec := range run.records(from, to) {
				if err := emit(rec); err != nil {
					return
				}
			}
			from = to
		}
		if fl != nil {
			fl.Flush()
		}
		if state.Terminal() {
			return
		}
		if !run.await(ch, r.Context()) {
			return
		}
	}
}

// handleMetrics writes the Prometheus exposition: service-level gauges and
// counters, then the per-run families — each run's Cumulative series
// labelled run="<id>" (one shared family header, per the text format),
// plus per-run balance gauges.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	runs := make([]*Run, 0, len(s.runs))
	for _, r := range s.runs {
		runs = append(runs, r)
	}
	admitted := s.admitted
	reaped := s.reaped
	rejected := make(map[string]int64, len(s.rejected))
	for k, v := range s.rejected {
		rejected[k] = v
	}
	s.mu.Unlock()

	byState := map[State]int{}
	type runExpo struct {
		id     string
		cum    metrics.Cumulative
		ratio  float64
		eff    float64
		done   int
		active bool
	}
	expos := make([]runExpo, 0, len(runs))
	anyRecovery := false
	for _, r := range runs {
		r.mu.Lock()
		byState[r.state]++
		cum := r.cum
		if cum.Recovery != nil {
			rc := *cum.Recovery
			cum.Recovery = &rc
			anyRecovery = true
		}
		expos = append(expos, runExpo{
			id: r.ID, cum: cum, ratio: r.lastRatio, eff: r.lastEff,
			done: r.done, active: !r.state.Terminal(),
		})
		r.mu.Unlock()
	}
	sort.Slice(expos, func(i, j int) bool { return expos[i].id < expos[j].id })

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}

	// Service-level series.
	p("# HELP permcell_serve_runs Runs per lifecycle state.\n")
	p("# TYPE permcell_serve_runs gauge\n")
	for _, st := range []State{StateQueued, StateRunning, StatePaused, StateCompleted, StateFailed, StateCanceled} {
		p("permcell_serve_runs{%s} %d\n", metrics.Labels("state", string(st)), byState[st])
	}
	p("# HELP permcell_serve_queue_depth Admission queue occupancy.\n")
	p("# TYPE permcell_serve_queue_depth gauge\n")
	p("permcell_serve_queue_depth %d\n", len(s.queue))
	p("# HELP permcell_serve_admitted_total Runs admitted through the queue.\n")
	p("# TYPE permcell_serve_admitted_total counter\n")
	p("permcell_serve_admitted_total %d\n", admitted)
	p("# HELP permcell_serve_rejected_total Run submissions rejected, by reason.\n")
	p("# TYPE permcell_serve_rejected_total counter\n")
	for _, reason := range []string{"invalid", "too_large", "queue_full"} {
		p("permcell_serve_rejected_total{%s} %d\n", metrics.Labels("reason", reason), rejected[reason])
	}
	p("# HELP permcell_serve_runs_reaped_total Terminal runs removed by the retention janitor.\n")
	p("# TYPE permcell_serve_runs_reaped_total counter\n")
	p("permcell_serve_runs_reaped_total %d\n", reaped)

	// Per-run gauges.
	p("# HELP permcell_run_steps_done Completed simulation steps per run.\n")
	p("# TYPE permcell_run_steps_done gauge\n")
	for _, e := range expos {
		p("permcell_run_steps_done{%s} %d\n", metrics.Labels("run", e.id), e.done)
	}
	p("# HELP permcell_run_load_ratio Last observed max/avg load ratio per run.\n")
	p("# TYPE permcell_run_load_ratio gauge\n")
	for _, e := range expos {
		p("permcell_run_load_ratio{%s} %g\n", metrics.Labels("run", e.id), e.ratio)
	}
	p("# HELP permcell_run_efficiency Last observed parallel efficiency per run.\n")
	p("# TYPE permcell_run_efficiency gauge\n")
	for _, e := range expos {
		p("permcell_run_efficiency{%s} %g\n", metrics.Labels("run", e.id), e.eff)
	}

	// Per-run Cumulative families: shared headers, labelled samples.
	if err == nil {
		err = metrics.WritePrometheusHeaders(w, anyRecovery)
	}
	for _, e := range expos {
		if err == nil {
			err = e.cum.WriteSamples(w, metrics.Labels("run", e.id))
		}
	}
	_ = err // the response is already streaming; nothing to report to
}
