package serve

import (
	"context"
	"sync"
	"time"

	"permcell"
	"permcell/internal/metrics"
)

// State is a run's lifecycle state. Transitions:
//
//	queued -> running -> completed | failed | canceled
//	running -> paused  (pause request: checkpoint + park, engine released)
//	paused  -> queued  (resume request: restore + re-admit)
//	queued | running | paused -> canceled
//
// completed, failed and canceled are terminal.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StatePaused    State = "paused"
	StateCompleted State = "completed"
	StateFailed    State = "failed"
	StateCanceled  State = "canceled"
)

// Terminal reports whether s is an end state.
func (s State) Terminal() bool {
	return s == StateCompleted || s == StateFailed || s == StateCanceled
}

// Run is one admitted simulation. All mutable fields are guarded by mu;
// the OnStep producer (rank 0's goroutine inside the engine) and any
// number of HTTP stream consumers synchronize only through it, never
// through engine internals — the engine's own Stats slices are never
// handed out (see the Engine facade's copy semantics).
type Run struct {
	ID   string
	Spec RunSpec

	dir string // private checkpoint directory

	ctx    context.Context // canceled by DELETE or server shutdown
	cancel context.CancelFunc

	// sab is the run-owned one-shot sabotage script: the same pointer is
	// threaded through every engine incarnation (supervisor rollbacks and
	// pause/resume restores), so the fault fires exactly once per run.
	sab *permcell.Sabotage

	mu      sync.Mutex
	state   State
	err     string
	doneAt  time.Time // when the run entered a terminal state (janitor clock)
	pauseRq bool      // pause requested; worker parks at the next batch boundary
	done    int       // completed simulation steps
	recs    []metrics.StepRecord
	changed chan struct{} // closed and replaced on every observable change

	// Per-run exposition state (GET /metrics).
	cum        metrics.Cumulative
	lastRatio  float64
	lastEff    float64
	supervisor *permcell.SupervisorReport
}

func newRun(id string, spec RunSpec, dir string, parent context.Context) *Run {
	ctx, cancel := context.WithCancel(parent)
	r := &Run{
		ID: id, Spec: spec, dir: dir,
		ctx: ctx, cancel: cancel,
		state:   StateQueued,
		changed: make(chan struct{}),
	}
	if sb := spec.Sabotage; sb != nil {
		r.sab = &permcell.Sabotage{Kind: sb.Kind, Step: sb.Step, Rank: sb.Rank}
	}
	return r
}

// notify wakes every waiter. Callers must hold mu.
func (r *Run) notify() {
	close(r.changed)
	r.changed = make(chan struct{})
}

// setState moves the run to s (recording err on failure) and wakes
// waiters.
func (r *Run) setState(s State, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.state.Terminal() {
		return // terminal states are sticky (e.g. cancel raced completion)
	}
	r.state = s
	if s.Terminal() {
		r.doneAt = time.Now()
	}
	if err != nil {
		r.err = err.Error()
	}
	r.notify()
}

// onStep is the engine's WithOnStep sink: it folds the step into the
// run's record log and counters. It runs on rank 0's goroutine mid-batch,
// so it must not call back into the engine; it only touches Run state
// under mu.
func (r *Run) onStep(st permcell.StepStats) {
	rec := stepRecord(&r.Spec, st)

	r.mu.Lock()
	defer r.mu.Unlock()
	r.recs = append(r.recs, rec)
	r.cum.Add(st.StepWallAve, st.Phases)
	r.cum.ObserveTransport(st.SentFrames, st.SentBytes, st.ResendCount)
	r.lastRatio = rec.LoadRatio
	r.lastEff = rec.Efficiency
	r.notify()
}

// stepRecord translates one StepStats into the service's streamed record
// shape. It is the single definition of that mapping: the soak test builds
// its solo reference traces through the same function, so a served run and
// a direct facade run of the same spec compare bit-for-bit.
func stepRecord(spec *RunSpec, st permcell.StepStats) metrics.StepRecord {
	m := 0
	if spec.kind() == KindParallel {
		m = spec.M
	}
	rec := metrics.NewStepRecord(st.Step, st.Phases,
		st.StepWallMax, st.StepWallAve,
		st.WorkMax, st.WorkAve, st.WorkMin,
		st.Balancer, st.Moved, st.MovedBytes,
		st.Conc.C0OverC, st.Conc.NFactor, m)
	rec.TotalEnergy = st.TotalEnergy
	rec.Temperature = st.Temperature
	rec.SentFrames = st.SentFrames
	rec.SentBytes = st.SentBytes
	rec.ResendCount = st.ResendCount
	return rec
}

// snapshot returns the fields the status endpoint reports.
func (r *Run) snapshot() RunStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	return RunStatus{
		ID:      r.ID,
		State:   r.state,
		Error:   r.err,
		Steps:   r.Spec.Steps,
		Done:    r.done,
		Records: len(r.recs),
	}
}

// RunStatus is the JSON shape of GET /runs/{id} and the elements of
// GET /runs.
type RunStatus struct {
	ID    string `json:"id"`
	State State  `json:"state"`
	Error string `json:"error,omitempty"`
	// Steps is the requested total; Done the completed simulation steps.
	Steps int `json:"steps"`
	Done  int `json:"done"`
	// Records is the number of step records available to stream.
	Records int `json:"records"`
}

// wait blocks until the run's observable state changes relative to the
// given generation channel, or ctx is done.
func (r *Run) await(ch <-chan struct{}, ctx context.Context) bool {
	select {
	case <-ch:
		return true
	case <-ctx.Done():
		return false
	}
}

// view returns the current record count, state and change channel in one
// consistent picture (the stream handler's polling primitive).
func (r *Run) view() (n int, st State, ch chan struct{}) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.recs), r.state, r.changed
}

// records returns recs[from:to) copied out under the lock.
func (r *Run) records(from, to int) []metrics.StepRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]metrics.StepRecord(nil), r.recs[from:to]...)
}
