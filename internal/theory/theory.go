// Package theory implements the analysis of Section 4.1: the theoretical
// upper bound f(m, n) on the particle concentration ratio C_0/C up to which
// the permanent-cell DLB can still allocate computational load uniformly.
//
// With C' = [m^2 + 3(m-1)^2] C^(1/3) cells in the maximum domain and
// concentration factor n = (C'_0/C') / (C_0/C), uniform balancing requires
//
//	C_0/C <= f(m, n) = 3(m-1)^2 / ( m^2 (n-1) + 3 n (m-1)^2 )   (eq. 8)
//
// with the specializations (eqs. 9-11)
//
//	f(2, n) = 3 / (7n - 4)
//	f(3, n) = 4 / (7n - 3)  [reduced from 12/(21n - 9)]
//	f(4, n) = 27 / (43n - 16)
//
// and the ordering f(2,n) <= f(3,n) <= f(4,n) for n >= 1 (eq. 12).
package theory

import "fmt"

// F returns the theoretical upper bound f(m, n) of eq. 8. m must be >= 2
// (with m = 1 there are no movable cells and no balancing is possible) and
// n must be >= 1 by construction of the concentration factor.
func F(m int, n float64) (float64, error) {
	if m < 2 {
		return 0, fmt.Errorf("theory: f(m,n) requires m >= 2, got m=%d", m)
	}
	if n < 1 {
		return 0, fmt.Errorf("theory: concentration factor must satisfy n >= 1, got %g", n)
	}
	mm := float64(m * m)
	w := 3 * float64((m-1)*(m-1))
	den := mm*(n-1) + n*w
	if den <= 0 {
		// Only possible at n == 1 where den = 3(m-1)^2 > 0 for m >= 2;
		// defensive all the same.
		return 0, fmt.Errorf("theory: degenerate denominator for m=%d n=%g", m, n)
	}
	return w / den, nil
}

// MustF is F for known-valid inputs; it panics on error. Intended for the
// experiment harnesses where m and n are fixed constants.
func MustF(m int, n float64) float64 {
	v, err := F(m, n)
	if err != nil {
		panic(err)
	}
	return v
}

// F2 is eq. 9: f(2, n) = 3/(7n-4).
func F2(n float64) float64 { return 3 / (7*n - 4) }

// F3 is eq. 10: f(3, n) = 4/(7n-3).
func F3(n float64) float64 { return 4 / (7*n - 3) }

// F4 is eq. 11: f(4, n) = 27/(43n-16).
func F4(n float64) float64 { return 27 / (43*n - 16) }

// CPrimeColumns returns the maximum-domain size in columns,
// m^2 + 3(m-1)^2 (the column form of C' in Section 4.1).
func CPrimeColumns(m int) int { return m*m + 3*(m-1)*(m-1) }

// CPrimeCells returns C' in cells for a cubic grid with C cells:
// [m^2 + 3(m-1)^2] * C^(1/3), where ncPerSide = C^(1/3).
func CPrimeCells(m, ncPerSide int) int { return CPrimeColumns(m) * ncPerSide }

// FCube returns the cube-domain analogue of eq. 8, derived in this
// repository as the paper's future-work extension (see internal/dlb3): with
// cube domains of m^3 cells on a 3-D torus, the permanent shell is the
// three high faces, a PE can host at most Q = m^3 + 7(m-1)^3 cells, and the
// same derivation yields
//
//	f_cube(m, n) = 7(m-1)^3 / ( m^3 (n-1) + 7 n (m-1)^3 ).
func FCube(m int, n float64) (float64, error) {
	if m < 2 {
		return 0, fmt.Errorf("theory: f_cube(m,n) requires m >= 2, got m=%d", m)
	}
	if n < 1 {
		return 0, fmt.Errorf("theory: concentration factor must satisfy n >= 1, got %g", n)
	}
	mm := float64(m * m * m)
	w := 7 * float64((m-1)*(m-1)*(m-1))
	den := mm*(n-1) + n*w
	if den <= 0 {
		return 0, fmt.Errorf("theory: degenerate denominator for m=%d n=%g", m, n)
	}
	return w / den, nil
}

// MustFCube is FCube for known-valid inputs.
func MustFCube(m int, n float64) float64 {
	v, err := FCube(m, n)
	if err != nil {
		panic(err)
	}
	return v
}

// QCubeCells returns the cube-domain maximum hosted cell count,
// m^3 + 7(m-1)^3.
func QCubeCells(m int) int { return m*m*m + 7*(m-1)*(m-1)*(m-1) }

// CanBalance reports whether, at concentration state (n, C_0/C), the
// inequality of eq. 8 still admits uniform load balancing.
func CanBalance(m int, n, c0OverC float64) (bool, error) {
	f, err := F(m, n)
	if err != nil {
		return false, err
	}
	return c0OverC <= f, nil
}
