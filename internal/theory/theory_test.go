package theory

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFRejectsBadInputs(t *testing.T) {
	if _, err := F(1, 2); err == nil {
		t.Error("m=1 accepted")
	}
	if _, err := F(3, 0.5); err == nil {
		t.Error("n<1 accepted")
	}
}

func TestSpecializationsMatchGeneralForm(t *testing.T) {
	// eqs. 9-11 must agree with eq. 8.
	for n := 1.0; n <= 5; n += 0.1 {
		if got, want := MustF(2, n), F2(n); math.Abs(got-want) > 1e-12 {
			t.Fatalf("f(2,%v): %v vs %v", n, got, want)
		}
		if got, want := MustF(3, n), F3(n); math.Abs(got-want) > 1e-12 {
			t.Fatalf("f(3,%v): %v vs %v", n, got, want)
		}
		if got, want := MustF(4, n), F4(n); math.Abs(got-want) > 1e-12 {
			t.Fatalf("f(4,%v): %v vs %v", n, got, want)
		}
	}
}

func TestOrderingEq12(t *testing.T) {
	// f(2,n) <= f(3,n) <= f(4,n) for n >= 1.
	f := func(raw float64) bool {
		n := 1 + math.Mod(math.Abs(raw), 10)
		return MustF(2, n) <= MustF(3, n)+1e-15 && MustF(3, n) <= MustF(4, n)+1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestFDecreasingInN(t *testing.T) {
	for _, m := range []int{2, 3, 4, 6} {
		prev := math.Inf(1)
		for n := 1.0; n <= 6; n += 0.25 {
			v := MustF(m, n)
			if v > prev+1e-15 {
				t.Fatalf("f(%d,n) not decreasing at n=%v", m, n)
			}
			prev = v
		}
	}
}

func TestFAtNEqualsOne(t *testing.T) {
	// At n = 1 the bound is 3(m-1)^2 / (3(m-1)^2) = 1: with no excess
	// concentration in the maximum domain, any C0/C is balanceable.
	for _, m := range []int{2, 3, 4, 8} {
		if v := MustF(m, 1); math.Abs(v-1) > 1e-12 {
			t.Errorf("f(%d,1) = %v, want 1", m, v)
		}
	}
}

func TestFPositiveAndAtMostOne(t *testing.T) {
	f := func(rawM int, rawN float64) bool {
		m := 2 + abs(rawM)%7
		n := 1 + math.Mod(math.Abs(rawN), 20)
		v := MustF(m, n)
		return v > 0 && v <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestCPrime(t *testing.T) {
	// Fig. 4: a PE with 3x3 columns can hold up to 2.33x its initial count.
	if CPrimeColumns(3) != 21 {
		t.Errorf("C'(m=3) = %d columns, want 21", CPrimeColumns(3))
	}
	if CPrimeCells(3, 12) != 21*12 {
		t.Errorf("C' cells = %d", CPrimeCells(3, 12))
	}
	if got := float64(CPrimeColumns(3)) / 9; math.Abs(got-2.333) > 0.01 {
		t.Errorf("max domain ratio %v, want ~2.33", got)
	}
	// The paper's C' formula in 3-D: [m^2+3(m-1)^2]C^(1/3).
	if CPrimeColumns(2) != 7 || CPrimeColumns(4) != 43 {
		t.Error("C' columns wrong for m=2 or m=4")
	}
}

func TestCanBalance(t *testing.T) {
	ok, err := CanBalance(4, 1.5, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	// f(4,1.5) = 27/(43*1.5-16) = 27/48.5 ~ 0.557 > 0.3.
	if !ok {
		t.Error("C0/C=0.3 at f~0.557 reported unbalanceable")
	}
	ok, err = CanBalance(2, 3, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	// f(2,3) = 3/17 ~ 0.176 < 0.3.
	if ok {
		t.Error("C0/C=0.3 at f~0.176 reported balanceable")
	}
}

func TestPaperValuesSpotCheck(t *testing.T) {
	// Hand-evaluated points of eqs. 9-11.
	if v := F2(2); math.Abs(v-0.3) > 1e-12 {
		t.Errorf("f(2,2) = %v, want 0.3", v)
	}
	if v := F3(1); math.Abs(v-1) > 1e-12 {
		t.Errorf("f(3,1) = %v, want 1", v)
	}
	if v := F4(2); math.Abs(v-27.0/70) > 1e-12 {
		t.Errorf("f(4,2) = %v, want %v", v, 27.0/70)
	}
}
