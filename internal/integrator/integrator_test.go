package integrator

import (
	"math"
	"testing"

	"permcell/internal/particle"
	"permcell/internal/rng"
	"permcell/internal/space"
	"permcell/internal/vec"
)

func TestHalfKick(t *testing.T) {
	s := &particle.Set{}
	s.Add(0, vec.Zero, vec.New(1, 0, 0))
	s.Frc[0] = vec.New(0, 2, 0)
	HalfKick(s, 0.1)
	want := vec.New(1, 0.1, 0)
	if s.Vel[0].Dist(want) > 1e-12 {
		t.Errorf("vel = %v, want %v", s.Vel[0], want)
	}
}

func TestDriftWraps(t *testing.T) {
	b, _ := space.NewCubicBox(10)
	s := &particle.Set{}
	s.Add(0, vec.New(9.95, 5, 5), vec.New(1, 0, 0))
	Drift(s, 0.1, b)
	if math.Abs(s.Pos[0].X-0.05) > 1e-12 {
		t.Errorf("pos.X = %v, want 0.05 (wrapped)", s.Pos[0].X)
	}
}

func TestRescaleToTemperature(t *testing.T) {
	s := &particle.Set{}
	r := rng.New(1)
	for i := 0; i < 500; i++ {
		s.Add(int64(i), vec.Zero, r.MaxwellVelocity(2.0, 1))
	}
	RescaleToTemperature(s, 0.722)
	if math.Abs(s.Temperature()-0.722) > 1e-12 {
		t.Errorf("T after rescale = %v, want 0.722", s.Temperature())
	}
}

func TestRescaleFactorEdgeCases(t *testing.T) {
	if RescaleFactor(0, 10, 1) != 1 {
		t.Error("zero KE should give factor 1")
	}
	if RescaleFactor(5, 0, 1) != 1 {
		t.Error("empty system should give factor 1")
	}
}

func TestRescalePreservesDirection(t *testing.T) {
	s := &particle.Set{}
	s.Add(0, vec.Zero, vec.New(3, 4, 0))
	Rescale(s, 0.5)
	if s.Vel[0].Dist(vec.New(1.5, 2, 0)) > 1e-12 {
		t.Errorf("vel = %v", s.Vel[0])
	}
}

func TestRemoveDrift(t *testing.T) {
	s := &particle.Set{}
	r := rng.New(2)
	for i := 0; i < 100; i++ {
		v := r.MaxwellVelocity(1, 1).Add(vec.New(5, 0, 0)) // big drift
		s.Add(int64(i), vec.Zero, v)
	}
	RemoveDrift(s)
	if p := s.Momentum(); p.Norm() > 1e-9 {
		t.Errorf("momentum after RemoveDrift = %v", p)
	}
}

func TestRemoveDriftEmpty(t *testing.T) {
	RemoveDrift(&particle.Set{}) // must not panic
}

// TestVerletHarmonicOscillator integrates a 1-D harmonic oscillator with the
// half-kick/drift/half-kick sequence and checks energy conservation and
// phase accuracy, which validates the integrator independent of any MD
// engine.
func TestVerletHarmonicOscillator(t *testing.T) {
	b, _ := space.NewCubicBox(100)
	s := &particle.Set{}
	s.Add(0, vec.New(51, 50, 50), vec.Zero) // displaced 1 from center
	center := vec.New(50, 50, 50)
	const k = 1.0
	force := func() {
		s.ZeroForces()
		d := s.Pos[0].Sub(center)
		s.Frc[0] = d.Scale(-k)
	}
	energy := func() float64 {
		d := s.Pos[0].Sub(center)
		return 0.5*s.Vel[0].Norm2() + 0.5*k*d.Norm2()
	}
	force()
	e0 := energy()
	const dt = 1e-3
	steps := int(math.Round(2 * math.Pi / dt)) // one period
	for i := 0; i < steps; i++ {
		HalfKick(s, dt)
		Drift(s, dt, b)
		force()
		HalfKick(s, dt)
	}
	if math.Abs(energy()-e0) > 1e-6 {
		t.Errorf("energy drift: %v -> %v", e0, energy())
	}
	// After one period the particle should be back near x = 51.
	if math.Abs(s.Pos[0].X-51) > 1e-2 {
		t.Errorf("after one period x = %v, want ~51", s.Pos[0].X)
	}
}
