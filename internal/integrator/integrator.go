// Package integrator implements the velocity form of the Verlet algorithm
// (the paper's integrator, after Heermann) and the velocity-rescaling
// thermostat the paper applies every 50 time steps.
//
// One velocity-Verlet step factors into
//
//	HalfKick(dt)  -> v += dt/2 * f
//	Drift(dt)     -> x += dt * v   (wrapped into the periodic box)
//	(recompute forces)
//	HalfKick(dt)  -> v += dt/2 * f
//
// so the force computation — the part the engines parallelize — sits between
// the two half kicks.
package integrator

import (
	"math"

	"permcell/internal/particle"
	"permcell/internal/space"
)

// HalfKick advances all velocities by dt/2 using the current forces
// (unit mass).
func HalfKick(s *particle.Set, dt float64) {
	h := dt / 2
	for i := range s.Vel {
		s.Vel[i] = s.Vel[i].MulAdd(h, s.Frc[i])
	}
}

// Drift advances all positions by dt using the current velocities and wraps
// them into the periodic box.
func Drift(s *particle.Set, dt float64, b space.Box) {
	for i := range s.Pos {
		s.Pos[i] = b.Wrap(s.Pos[i].MulAdd(dt, s.Vel[i]))
	}
}

// RescaleFactor returns the velocity scale factor that brings a system with
// total kinetic energy ke and n particles to target reduced temperature
// tref. It returns 1 when the system has no kinetic energy or no particles
// (nothing to scale).
func RescaleFactor(ke float64, n int, tref float64) float64 {
	if n == 0 || ke <= 0 {
		return 1
	}
	t := 2 * ke / (3 * float64(n))
	return math.Sqrt(tref / t)
}

// Rescale scales all velocities in s by factor.
func Rescale(s *particle.Set, factor float64) {
	if factor == 1 {
		return
	}
	for i := range s.Vel {
		s.Vel[i] = s.Vel[i].Scale(factor)
	}
}

// RescaleToTemperature sets the instantaneous temperature of s to tref.
// This is the serial-engine convenience; the parallel engine computes the
// factor from a global kinetic-energy reduction and applies Rescale locally.
func RescaleToTemperature(s *particle.Set, tref float64) {
	Rescale(s, RescaleFactor(s.KineticEnergy(), s.Len(), tref))
}

// RemoveDrift subtracts the center-of-mass velocity so total momentum is
// zero. Standard MD initialization hygiene: prevents the whole system from
// translating through the box.
func RemoveDrift(s *particle.Set) {
	n := s.Len()
	if n == 0 {
		return
	}
	com := s.Momentum().Scale(1 / float64(n))
	for i := range s.Vel {
		s.Vel[i] = s.Vel[i].Sub(com)
	}
}
