package permcell_test

import (
	"reflect"
	"testing"
	"time"

	"permcell"
)

// The cross-transport determinism contract: the in-process channel
// transport and the TCP multi-process transport run the identical PE
// code over the identical delivery contract, so a given seed must
// produce bit-identical step traces and final states on either — and
// across a checkpointed rescale to a different worker-process count.
// The tests below host the TCP workers as goroutines (Transport.Worker
// empty): real loopback sockets and real frames, but in one test
// process, so the race detector covers the whole stack.

// detStep strips the fields that legitimately differ between transports
// (wall-clock timings, phase breakdowns, wire-traffic counters), leaving
// the deterministic trace the contract covers.
func detStep(st permcell.StepStats) permcell.StepStats {
	var zero permcell.StepStats
	st.WallMax, st.WallAve, st.WallMin = 0, 0, 0
	st.StepWallMax, st.StepWallAve = 0, 0
	st.Phases = zero.Phases
	st.SentFrames, st.SentBytes, st.ResendCount = 0, 0, 0
	return st
}

func sameTrace(t *testing.T, label string, want, got []permcell.StepStats) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d records, want %d", label, len(got), len(want))
	}
	for i := range want {
		w, g := detStep(want[i]), detStep(got[i])
		if !reflect.DeepEqual(w, g) {
			t.Errorf("%s: record %d diverges:\n want %+v\n  got %+v", label, i, w, g)
		}
	}
}

func sameFinal(t *testing.T, label string, want, got *permcell.Result) {
	t.Helper()
	if want.Final == nil || got.Final == nil {
		t.Fatalf("%s: missing final state (want %v, got %v)", label, want.Final != nil, got.Final != nil)
	}
	if !reflect.DeepEqual(want.Final.ID, got.Final.ID) ||
		!reflect.DeepEqual(want.Final.Pos, got.Final.Pos) ||
		!reflect.DeepEqual(want.Final.Vel, got.Final.Vel) {
		t.Errorf("%s: final particle states diverge", label)
	}
	if want.CommMsgs != got.CommMsgs || want.CommBytes != got.CommBytes {
		t.Errorf("%s: comm counters: got %d msgs / %d bytes, want %d / %d",
			label, got.CommMsgs, got.CommBytes, want.CommMsgs, want.CommBytes)
	}
}

// runTransport runs the standard small DLB workload for steps and
// returns its outcome.
func runTransport(t *testing.T, steps int, opts ...permcell.Option) *permcell.Result {
	t.Helper()
	base := []permcell.Option{
		permcell.WithSeed(7),
		permcell.WithDLB(),
		permcell.WithWells(2, 1.5),
		permcell.WithWatchdog(time.Minute),
	}
	eng, err := permcell.New(2, 4, 0.3, append(base, opts...)...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := eng.Step(steps); err != nil {
		eng.Result()
		t.Fatalf("Step: %v", err)
	}
	res, err := eng.Result()
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	return res
}

func tcp(procs int) permcell.Option {
	return permcell.WithTransport(permcell.Transport{Kind: permcell.TransportTCP, Procs: procs})
}

// TestCrossTransportGolden is the acceptance gate: the same seed on the
// in-process transport and on TCP at several process counts produces
// bit-identical traces, final states and comm counters.
func TestCrossTransportGolden(t *testing.T) {
	const steps = 24
	ref := runTransport(t, steps)
	for _, procs := range []int{1, 2, 4} {
		got := runTransport(t, steps, tcp(procs))
		label := map[int]string{1: "tcp/1proc", 2: "tcp/2procs", 4: "tcp/4procs"}[procs]
		sameTrace(t, label, ref.Stats, got.Stats)
		sameFinal(t, label, ref, got)
		// TCP traffic must actually have flowed when ranks span processes.
		if procs > 1 {
			last := got.Stats[len(got.Stats)-1]
			if last.SentFrames == 0 || last.SentBytes == 0 {
				t.Errorf("%s: no wire traffic counted (frames=%d bytes=%d)",
					label, last.SentFrames, last.SentBytes)
			}
		}
	}
}

// TestTCPRescale checkpoints a 4-process TCP run halfway and resumes it
// at 2 processes (and in-process): elastic rescaling must splice into
// the uninterrupted golden trace bit for bit on every path.
func TestTCPRescale(t *testing.T) {
	const half, steps = 12, 24
	golden := runTransport(t, steps)

	dir := t.TempDir()
	first := runTransport(t, half, tcp(4), permcell.WithCheckpoint(half, dir))
	sameTrace(t, "tcp/4procs first half", golden.Stats[:len(first.Stats)], first.Stats)

	resume := func(label string, opts ...permcell.Option) *permcell.Result {
		eng, err := permcell.Restore(dir, opts...)
		if err != nil {
			t.Fatalf("%s: Restore: %v", label, err)
		}
		if err := eng.Step(steps - half); err != nil {
			eng.Result()
			t.Fatalf("%s: Step: %v", label, err)
		}
		res, err := eng.Result()
		if err != nil {
			t.Fatalf("%s: Result: %v", label, err)
		}
		sameTrace(t, label, golden.Stats[len(first.Stats):], res.Stats)
		if !reflect.DeepEqual(golden.Final.Pos, res.Final.Pos) {
			t.Errorf("%s: final positions diverge from the uninterrupted run", label)
		}
		return res
	}
	down := resume("rescale tcp 4->2", tcp(2), permcell.WithWatchdog(time.Minute))
	chan2 := resume("rescale tcp 4->chan", permcell.WithWatchdog(time.Minute))
	// The cumulative comm counters legitimately exceed the uninterrupted
	// run's (restore re-exchanges halos to rebuild forces), but the two
	// resume paths must agree with each other exactly.
	if down.CommMsgs != chan2.CommMsgs || down.CommBytes != chan2.CommBytes {
		t.Errorf("resume comm counters: tcp %d msgs / %d bytes, chan %d / %d",
			down.CommMsgs, down.CommBytes, chan2.CommMsgs, chan2.CommBytes)
	}
}

// TestTCPFaultReplay runs a seeded chaos plan — jitter, reordering,
// transient failures, a scripted stall — on both transports. The fault
// layer heals everything it injects and draws from placement-independent
// per-link streams, so the healed traces must match bit for bit and the
// injected-fault counters must agree.
func TestTCPFaultReplay(t *testing.T) {
	const steps = 16
	plan := permcell.FaultPlan{
		Seed:        99,
		DelayProb:   0.2,
		MaxDelay:    100 * time.Microsecond,
		ReorderProb: 0.3,
		FailProb:    0.2,
		Stalls:      []permcell.Stall{{Rank: 1, AfterOps: 40, Duration: 2 * time.Millisecond}},
	}
	ref := runTransport(t, steps, permcell.WithFaultPlan(plan))
	got := runTransport(t, steps, permcell.WithFaultPlan(plan), tcp(2))
	sameTrace(t, "tcp/2procs chaos", ref.Stats, got.Stats)
	sameFinal(t, "tcp/2procs chaos", ref, got)
	if ref.Faults != got.Faults {
		t.Errorf("fault counters diverge: chan %+v, tcp %+v", ref.Faults, got.Faults)
	}
	if got.Faults.Failures == 0 || got.Faults.Reorders == 0 {
		t.Errorf("chaos plan injected nothing: %+v", got.Faults)
	}
}

// TestTransportRejections pins the unsupported combinations to loud
// construction-time errors.
func TestTransportRejections(t *testing.T) {
	if _, err := permcell.New(2, 4, 0.3, permcell.WithTransport(permcell.Transport{Kind: "carrier-pigeon"})); err == nil {
		t.Error("unknown transport kind accepted")
	}
	if _, err := permcell.NewSerial(4, 0.3, tcp(2)); err == nil {
		t.Error("serial engine accepted the tcp transport")
	}
	if _, err := permcell.NewStatic(permcell.ShapeCube, 4, 8, 0.3, tcp(2)); err == nil {
		t.Error("static engine accepted the tcp transport")
	}
	sab := permcell.Sabotage{Kind: permcell.SabotagePanic, Step: 1}
	if _, err := permcell.New(2, 4, 0.3, tcp(2), permcell.WithSabotage(&sab)); err == nil {
		t.Error("sabotage accepted on the tcp transport")
	}
	if _, err := permcell.New(2, 4, 0.3, tcp(5)); err == nil {
		t.Error("more processes than ranks accepted")
	}
}
