package permcell

// The pluggable load-balancing API. WithBalancer(PermanentCell(...)) is the
// primary way to select a strategy; WithDLB() remains as sugar for the
// paper's permanent-cell scheme with default parameters. All strategies
// execute their column moves through the same ledger/transfer machinery
// (forces carried with the payload), so the 8-neighbor communication
// pattern, the C' hosting bound, conservation and momentum invariants hold
// regardless of which balancer decides; see DESIGN.md section 11.

import (
	"permcell/internal/balance"
	"permcell/internal/dlb"
)

// Balancer is a pluggable column-ownership load-balancing strategy driven
// by the parallel engine at the DLB cadence. Construct one with
// PermanentCell, SFC or Diffusive and pass it to WithBalancer. The
// balancer's identity travels with the run: StepStats.Balancer, trace/run
// headers and checkpoint metadata all record it, and a checkpoint refuses
// to resume under a different balancer.
type Balancer = balance.Balancer

// Pick selects which candidate column the permanent-cell balancer hands
// over when several are eligible.
type Pick = dlb.Strategy

// PermanentCellConfig parameterizes the paper's permanent-cell balancer.
type PermanentCellConfig struct {
	// Hysteresis is the relative load gap a neighbor must trail by before
	// a column moves (0 = paper-literal: any strictly faster neighbor
	// triggers a move).
	Hysteresis float64
	// Pick selects among candidate columns (default PickMostLoaded).
	Pick Pick
}

// PermanentCell returns the paper's permanent-cell balancer (Section 2.3):
// each epoch a PE compares loads with its 8 torus neighbors and hands at
// most one column toward the fastest one, following the three-case
// redistribution protocol. This is the reference implementation —
// WithBalancer(PermanentCell(PermanentCellConfig{Hysteresis: h})) produces
// traces bit-identical to WithDLB() with WithHysteresis(h).
func PermanentCell(cfg PermanentCellConfig) Balancer {
	return balance.PermanentCell{Hysteresis: cfg.Hysteresis, Pick: cfg.Pick}
}

// SFCConfig parameterizes the space-filling-curve balancer.
type SFCConfig struct {
	// Hysteresis is the relative load surplus required before a move fires
	// (0 = any strict improvement).
	Hysteresis float64
	// Moves bounds the columns one PE sheds per epoch (0 = default 1).
	Moves int
}

// SFC returns a space-filling-curve repartitioner (Stijnman & Bisseling's
// ORB-over-a-curve idiom): permanent-cell columns are linearized in Morton
// order, the curve is cut into P near-equal-load segments each epoch, and
// columns migrate toward their ideal segment — within the permanent-cell
// legal move space, so the 8-neighbor exchange pattern is preserved.
func SFC(cfg SFCConfig) Balancer {
	return balance.SFC{Hysteresis: cfg.Hysteresis, Moves: cfg.Moves}
}

// DiffusiveConfig parameterizes the diffusive balancer.
type DiffusiveConfig struct {
	// Hysteresis is the relative load gap a neighbor must trail by before
	// any flow is demanded toward it (0 = any gradient).
	Hysteresis float64
	// Moves bounds the columns one PE sheds per epoch (0 = default 1).
	Moves int
}

// Diffusive returns a nearest-neighbor diffusion balancer (Eibl & Rüde's
// DIFF idiom): each PE sheds load only to its 8 torus neighbors,
// proportionally to the pairwise cost gradient, realized with legal
// permanent-cell moves.
func Diffusive(cfg DiffusiveConfig) Balancer {
	return balance.Diffusive{Hysteresis: cfg.Hysteresis, Moves: cfg.Moves}
}

// BalancerByName parses a balancer spec: a bare name ("permcell", "sfc",
// "diffusive", "none") with default parameters, or a parameterized form
// like "permcell(h=0.1)" or "sfc(h=0,moves=2)". "none" returns nil (static
// DDM). This is the format CLI flags and checkpoint metadata use.
func BalancerByName(spec string) (Balancer, error) {
	return balance.Decode(spec)
}

// BalancerName returns the identity recorded in run headers for b: its
// name, or "none" for nil.
func BalancerName(b Balancer) string {
	if b == nil {
		return "none"
	}
	return b.Name()
}

// BalancerSpec returns the canonical parameterized spec for b ("none" for
// nil) — the string BalancerByName parses back and checkpoint metadata
// records, e.g. "permcell(h=0.1,pick=0)".
func BalancerSpec(b Balancer) string { return balance.Encode(b) }
