package permcell_test

import (
	"math"
	"testing"

	"permcell"
)

func TestSimValidate(t *testing.T) {
	if err := (permcell.Sim{M: 2, P: 4, Rho: 0.256, Steps: 1}).Validate(); err != nil {
		t.Errorf("valid sim rejected: %v", err)
	}
	if err := (permcell.Sim{M: 2, P: 5, Rho: 0.256, Steps: 1}).Validate(); err == nil {
		t.Error("non-square P accepted")
	}
	if err := (permcell.Sim{M: 1, P: 4, Rho: 0.256, Steps: 1}).Validate(); err == nil {
		t.Error("m=1 accepted")
	}
}

func TestSimRunFacade(t *testing.T) {
	res, err := permcell.Sim{
		M: 2, P: 4, Rho: 0.256, Steps: 50, DLB: true,
		Seed: 1, Wells: 3, Hysteresis: 0.1,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats) != 50 {
		t.Fatalf("stats = %d", len(res.Stats))
	}
	if res.Final.Len() == 0 {
		t.Fatal("no particles in final state")
	}
	if err := res.Final.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBoundFacade(t *testing.T) {
	f, err := permcell.Bound(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f-0.3) > 1e-12 { // f(2,2) = 3/(7*2-4)
		t.Errorf("Bound(2,2) = %v, want 0.3", f)
	}
	if _, err := permcell.Bound(1, 2); err == nil {
		t.Error("m=1 accepted")
	}
}

func TestMaxDomainColumnsFacade(t *testing.T) {
	if permcell.MaxDomainColumns(3) != 21 {
		t.Error("C'(3) != 21")
	}
}

func TestPaperConstants(t *testing.T) {
	if permcell.PaperTref != 0.722 || permcell.PaperCutoff != 2.5 {
		t.Error("paper constants wrong")
	}
}
